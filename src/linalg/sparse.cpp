#include "linalg/sparse.hpp"

#include <algorithm>
#include <stdexcept>

namespace gnrfet::linalg {

void SparseBuilder::add(size_t row, size_t col, double value) {
  if (row >= n_ || col >= n_) throw std::out_of_range("SparseBuilder::add: index out of range");
  trips_.push_back({row, col, value});
}

SparseMatrix::SparseMatrix(const SparseBuilder& b) {
  const size_t n = b.dim();
  auto trips = b.triplets();
  std::sort(trips.begin(), trips.end(), [](const auto& x, const auto& y) {
    return x.row != y.row ? x.row < y.row : x.col < y.col;
  });
  row_ptr_.assign(n + 1, 0);
  col_idx_.reserve(trips.size());
  values_.reserve(trips.size());
  size_t i = 0;
  for (size_t row = 0; row < n; ++row) {
    row_ptr_[row] = col_idx_.size();
    while (i < trips.size() && trips[i].row == row) {
      const size_t col = trips[i].col;
      double v = 0.0;
      while (i < trips.size() && trips[i].row == row && trips[i].col == col) {
        v += trips[i].value;
        ++i;
      }
      col_idx_.push_back(col);
      values_.push_back(v);
    }
  }
  row_ptr_[n] = col_idx_.size();
  diag_pos_.assign(n, -1);
  for (size_t row = 0; row < n; ++row) {
    for (size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      if (col_idx_[k] == row) diag_pos_[row] = static_cast<ptrdiff_t>(k);
    }
  }
}

void SparseMatrix::multiply(const std::vector<double>& x, std::vector<double>& y) const {
  const size_t n = dim();
  if (x.size() != n) throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
  y.resize(n);  // every entry is overwritten below; no need to zero-fill
  for (size_t row = 0; row < n; ++row) {
    double s = 0.0;
    for (size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[row] = s;
  }
}

std::vector<double> SparseMatrix::diagonal() const {
  std::vector<double> d(dim(), 0.0);
  for (size_t row = 0; row < dim(); ++row) {
    if (diag_pos_[row] >= 0) d[row] = values_[static_cast<size_t>(diag_pos_[row])];
  }
  return d;
}

void SparseMatrix::add_to_diagonal(size_t row, double value) {
  if (row >= dim() || diag_pos_[row] < 0) {
    throw std::out_of_range("SparseMatrix::add_to_diagonal: no diagonal entry");
  }
  values_[static_cast<size_t>(diag_pos_[row])] += value;
}

void SparseMatrix::set_diagonal(size_t row, double value) {
  if (row >= dim() || diag_pos_[row] < 0) {
    throw std::out_of_range("SparseMatrix::set_diagonal: no diagonal entry");
  }
  values_[static_cast<size_t>(diag_pos_[row])] = value;
}

void SparseMatrix::restore_values(const std::vector<double>& values) {
  if (values.size() != values_.size()) {
    throw std::invalid_argument("SparseMatrix::restore_values: nonzero count mismatch");
  }
  values_ = values;
}

}  // namespace gnrfet::linalg
