#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace gnrfet::linalg {

namespace {
constexpr double kPivotFloor = 1e-300;

template <typename T>
void factor_in_place(Matrix<T>& a, std::vector<size_t>& perm, int* sign) {
  const size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("LU: matrix must be square");
  perm.resize(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t k = 0; k < n; ++k) {
    size_t piv = k;
    double best = std::abs(a(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < kPivotFloor) throw std::runtime_error("LU: singular matrix");
    if (piv != k) {
      for (size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(perm[k], perm[piv]);
      if (sign) *sign = -*sign;
    }
    const T inv_piv = T{1} / a(k, k);
    for (size_t i = k + 1; i < n; ++i) {
      const T m = a(i, k) * inv_piv;
      a(i, k) = m;
      if (m == T{}) continue;
      for (size_t j = k + 1; j < n; ++j) a(i, j) -= m * a(k, j);
    }
  }
}

template <typename T>
std::vector<T> lu_solve_one(const Matrix<T>& lu, const std::vector<size_t>& perm,
                            const std::vector<T>& b) {
  const size_t n = lu.rows();
  if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
  std::vector<T> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  // Forward substitution (unit lower triangle).
  for (size_t i = 1; i < n; ++i) {
    T s = x[i];
    for (size_t j = 0; j < i; ++j) s -= lu(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (size_t ii = n; ii-- > 0;) {
    T s = x[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= lu(ii, j) * x[j];
    x[ii] = s / lu(ii, ii);
  }
  return x;
}
}  // namespace

LU::LU(CMatrix a) : lu_(std::move(a)) { factor_in_place(lu_, perm_, &sign_); }

void LU::factor(const CMatrix& a) {
  lu_ = a;
  sign_ = 1;
  factor_in_place(lu_, perm_, &sign_);
}

void LU::solve_into(const CMatrix& b, CMatrix& x) const {
  const size_t n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("LU::solve_into: shape mismatch");
  x.resize_zero(b.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    for (size_t i = 0; i < n; ++i) x(i, j) = b(perm_[i], j);
    // Forward substitution (unit lower triangle), in place on column j.
    for (size_t i = 1; i < n; ++i) {
      cplx s = x(i, j);
      for (size_t k = 0; k < i; ++k) s -= lu_(i, k) * x(k, j);
      x(i, j) = s;
    }
    // Back substitution.
    for (size_t ii = n; ii-- > 0;) {
      cplx s = x(ii, j);
      for (size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x(k, j);
      x(ii, j) = s / lu_(ii, ii);
    }
  }
}

std::vector<cplx> LU::solve(const std::vector<cplx>& b) const {
  return lu_solve_one(lu_, perm_, b);
}

CMatrix LU::solve(const CMatrix& b) const {
  if (b.rows() != lu_.rows()) throw std::invalid_argument("LU::solve: shape mismatch");
  CMatrix x(b.rows(), b.cols());
  std::vector<cplx> col(b.rows());
  for (size_t j = 0; j < b.cols(); ++j) {
    for (size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const auto sol = lu_solve_one(lu_, perm_, col);
    for (size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

double LU::log_abs_det() const {
  double s = 0.0;
  for (size_t i = 0; i < lu_.rows(); ++i) s += std::log(std::abs(lu_(i, i)));
  return s;
}

CMatrix inverse(const CMatrix& a) {
  const LU lu(a);
  return lu.solve(CMatrix::identity(a.rows()));
}

LUReal::LUReal(DMatrix a) : lu_(std::move(a)) { factor_in_place(lu_, perm_, nullptr); }

std::vector<double> LUReal::solve(const std::vector<double>& b) const {
  return lu_solve_one(lu_, perm_, b);
}

}  // namespace gnrfet::linalg
