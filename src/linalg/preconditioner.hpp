#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/sparse.hpp"

/// Preconditioners for the PCG Poisson solves.
///
/// The Poisson operator is a structured-grid SPD Laplacian; Jacobi is the
/// weakest useful preconditioner for it, and the Newton/Gummel loops solve
/// with the same sparsity pattern thousands of times per bias table. The
/// implementations here exploit that: `factor()` does the one-off symbolic
/// setup (sparsity analysis, allocation), `refactor()` refreshes only the
/// numeric content and is what the Newton loop calls when nothing but the
/// matrix diagonal moved.
///
/// Every sweep runs on one thread in a fixed order (see
/// linalg/kernels.hpp), so solves stay bit-deterministic; parallelism in
/// this codebase is across solves, never inside one.
namespace gnrfet::linalg {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Full (symbolic + numeric) setup. Invalidates nothing on throw.
  virtual void factor(const SparseMatrix& a) = 0;

  /// Numeric-only refresh after value edits that preserved the sparsity
  /// pattern (the Newton loop only retargets the diagonal). Falls back to
  /// factor() when no prior setup exists or the dimension changed.
  virtual void refactor(const SparseMatrix& a) = 0;

  /// z = M^{-1} r. Requires a prior factor()/refactor().
  virtual void apply(const std::vector<double>& r, std::vector<double>& z) const = 0;

  /// Stable identifier: "jacobi", "ssor", or "ic0".
  virtual const char* name() const = 0;
};

/// Diagonal scaling, kept as the selectable baseline. The inverse-diagonal
/// formula matches the pre-preconditioner pcg_solve bit-for-bit, which the
/// GNRFET_POISSON_PC=jacobi regression path relies on.
class JacobiPreconditioner final : public Preconditioner {
 public:
  void factor(const SparseMatrix& a) override;
  void refactor(const SparseMatrix& a) override { factor(a); }
  void apply(const std::vector<double>& r, std::vector<double>& z) const override;
  const char* name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

/// Symmetric SOR: M = (D/w + L) (D/w)^{-1} (D/w + U), applied as a forward
/// sweep, diagonal scale, and backward sweep over the matrix rows. PCG is
/// invariant under constant scaling of M, so the conventional 1/(w(2-w))
/// factor is dropped. The matrix passed to factor()/refactor() must
/// outlive the preconditioner's last apply(): the sweeps read the
/// off-diagonal values in place rather than copying them.
class SsorPreconditioner final : public Preconditioner {
 public:
  explicit SsorPreconditioner(double omega = 1.0);
  void factor(const SparseMatrix& a) override;
  void refactor(const SparseMatrix& a) override;
  void apply(const std::vector<double>& r, std::vector<double>& z) const override;
  const char* name() const override { return "ssor"; }

 private:
  double omega_;
  const SparseMatrix* a_ = nullptr;
  std::vector<size_t> diag_idx_;       ///< CSR position of each row's diagonal
  std::vector<double> omega_inv_diag_; ///< w / d_i
  mutable std::vector<double> t_;      ///< forward-sweep scratch
};

/// Zero-fill incomplete Cholesky: A ~= L L^T with L restricted to the
/// sparsity of lower(A). On breakdown (a non-positive pivot, possible for
/// SPD matrices that are not M-matrices) the factorization restarts with
/// an escalating diagonal shift A + alpha*diag(A) until every pivot is
/// positive (Manteuffel's shifted IC).
///
/// `drop_compensation` in [0, 1] blends in modified-IC behavior: fill the
/// pattern drops is moved onto the two affected diagonals instead of
/// being discarded, which preserves row sums (the MIC property) and cuts
/// the condition number of the preconditioned Laplacian from O(h^-2) to
/// O(h^-1). 0 = classic IC(0), 1 = full MIC(0); the relaxed default 0.95
/// is the usual robustness compromise (full MIC can drive the last pivots
/// toward zero on near-singular rows — the shift fallback then engages).
///
/// factor() builds the L and L^T patterns plus an index map into A's value
/// array; refactor() re-runs only the numeric loop on the stored pattern —
/// valid whenever the pattern is unchanged, in particular for the Newton
/// diagonal updates.
class IncompleteCholesky final : public Preconditioner {
 public:
  explicit IncompleteCholesky(double drop_compensation = 0.95);
  void factor(const SparseMatrix& a) override;
  void refactor(const SparseMatrix& a) override;
  void apply(const std::vector<double>& r, std::vector<double>& z) const override;
  const char* name() const override { return "ic0"; }

  /// Diagonal shift (relative to diag(A)) the last factorization needed;
  /// 0 when IC(0) succeeded unshifted.
  double diagonal_shift() const { return shift_; }

 private:
  void refactor_numeric(const SparseMatrix& a);

  double theta_;  ///< drop-compensation weight (0 = IC, 1 = MIC)
  size_t n_ = 0;
  // L in CSR, rows sorted, diagonal last in each row.
  std::vector<size_t> lrow_ptr_, lcol_;
  std::vector<double> lval_;
  std::vector<size_t> amap_;  ///< L entry -> index into a.values()
  // Strict upper part of L^T in CSR (for the backward sweep), plus the map
  // from each L^T entry back to its L entry so one numeric pass fills both.
  std::vector<size_t> urow_ptr_, ucol_, umap_;
  std::vector<double> uval_;
  std::vector<double> inv_ldiag_;
  mutable std::vector<double> y_;  ///< forward-sweep scratch
  double shift_ = 0.0;
};

enum class PreconditionerKind { kJacobi, kSsor, kIc0, kMg };

/// Parses "jacobi" | "ssor" | "ic0" | "mg"; throws std::invalid_argument
/// otherwise.
PreconditionerKind preconditioner_kind_from_string(const std::string& s);

const char* to_string(PreconditionerKind kind);

/// Builds a matrix-only preconditioner. kMg throws: the geometric
/// multigrid hierarchy needs the grid geometry, so it is constructed in
/// the poisson layer (poisson::MultigridPreconditioner) instead.
std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind);

}  // namespace gnrfet::linalg
